package seqtype

import (
	"strconv"
	"testing"
	"testing/quick"

	"github.com/ioa-lab/boosting/internal/codec"
)

func allTypes() []*Type {
	return []*Type{
		ReadWrite([]string{"a", "b"}, "a"),
		BinaryConsensus(),
		KSetConsensus(2, 4),
		Counter(),
		Queue(),
		TestAndSet(),
		CompareAndSwap([]string{"x", "y"}, "x"),
		FetchAdd(),
	}
}

func TestValidateAll(t *testing.T) {
	for _, ty := range allTypes() {
		if err := ty.Validate(); err != nil {
			t.Errorf("%s: %v", ty.Name, err)
		}
	}
}

func TestValidateRejectsEmptyInitials(t *testing.T) {
	ty := &Type{Name: "bad", IsInv: func(string) bool { return false }}
	if err := ty.Validate(); err == nil {
		t.Error("want error for empty V0")
	}
}

func TestValidateRejectsPartialDelta(t *testing.T) {
	ty := &Type{
		Name:       "partial",
		Initials:   []string{"v"},
		IsInv:      func(inv string) bool { return inv == "op" },
		Apply:      func(inv, val string) []Result { return nil },
		SampleInvs: []string{"op"},
	}
	if err := ty.Validate(); err == nil {
		t.Error("want totality error")
	}
}

func TestValidateRejectsFalseDeterminismClaim(t *testing.T) {
	ty := &Type{
		Name:          "fake-det",
		Initials:      []string{"v"},
		Deterministic: true,
		IsInv:         func(inv string) bool { return inv == "op" },
		Apply: func(inv, val string) []Result {
			return []Result{{Resp: "a", NewVal: val}, {Resp: "b", NewVal: val}}
		},
		SampleInvs: []string{"op"},
	}
	if err := ty.Validate(); err == nil {
		t.Error("want determinism error")
	}
}

func TestReadWriteSemantics(t *testing.T) {
	ty := ReadWrite([]string{"a", "b"}, "a")
	r, err := ty.ApplyOne(Read, "a")
	if err != nil || r.Resp != "a" || r.NewVal != "a" {
		t.Errorf("read: %v %v", r, err)
	}
	r, err = ty.ApplyOne(Write("b"), "a")
	if err != nil || r.Resp != Ack || r.NewVal != "b" {
		t.Errorf("write: %v %v", r, err)
	}
	if ty.IsInv(Write("zzz")) {
		t.Error("write of non-member accepted")
	}
}

func TestBinaryConsensusFirstValueWins(t *testing.T) {
	ty := BinaryConsensus()
	r1, err := ty.ApplyOne(Init("1"), "")
	if err != nil || r1.Resp != Decide("1") || r1.NewVal != "1" {
		t.Fatalf("first init: %v %v", r1, err)
	}
	r2, err := ty.ApplyOne(Init("0"), r1.NewVal)
	if err != nil || r2.Resp != Decide("1") || r2.NewVal != "1" {
		t.Errorf("second init must return first value: %v %v", r2, err)
	}
}

func TestBinaryConsensusStability(t *testing.T) {
	// Once the value is non-empty it never changes, whatever sequence of
	// invocations is applied.
	ty := BinaryConsensus()
	f := func(bits []bool) bool {
		val := ""
		var first string
		for _, b := range bits {
			v := "0"
			if b {
				v = "1"
			}
			r, err := ty.ApplyOne(Init(v), val)
			if err != nil {
				return false
			}
			val = r.NewVal
			if first == "" {
				first = v
			}
			if d, _ := DecideValue(r.Resp); d != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKSetConsensusRemembersAtMostK(t *testing.T) {
	const k, n = 2, 5
	ty := KSetConsensus(k, n)
	val := ty.Initials[0]
	for i := 0; i < n; i++ {
		r, err := ty.ApplyOne(Init(strconv.Itoa(i)), val)
		if err != nil {
			t.Fatal(err)
		}
		val = r.NewVal
		members, err := codec.ParseSet(val)
		if err != nil {
			t.Fatal(err)
		}
		if len(members) > k {
			t.Fatalf("after %d ops, |W| = %d > k = %d", i+1, len(members), k)
		}
	}
	members, _ := codec.ParseSet(val)
	if len(members) != k {
		t.Errorf("final |W| = %d, want %d", len(members), k)
	}
}

func TestKSetConsensusResponsesFromW(t *testing.T) {
	const k, n = 2, 4
	ty := KSetConsensus(k, n)
	// From W = {0,1} (full), every result must decide 0 or 1 and leave W
	// unchanged.
	w := codec.Set([]string{"0", "1"})
	for _, r := range ty.Apply(Init("3"), w) {
		d, ok := DecideValue(r.Resp)
		if !ok || (d != "0" && d != "1") {
			t.Errorf("decide %q not in W", r.Resp)
		}
		if r.NewVal != w {
			t.Errorf("W changed at capacity: %q", r.NewVal)
		}
	}
	// From W = {0} (not full), init(3) may decide 0 or 3, and W gains 3.
	w1 := codec.Set([]string{"0"})
	results := ty.Apply(Init("3"), w1)
	if len(results) != 2 {
		t.Fatalf("want 2 results, got %d", len(results))
	}
	for _, r := range results {
		if r.NewVal != codec.Set([]string{"0", "3"}) {
			t.Errorf("new W = %q", r.NewVal)
		}
	}
}

func TestKSetConsensusIsNondeterministic(t *testing.T) {
	ty := KSetConsensus(2, 3)
	if ty.Deterministic {
		t.Error("k-set-consensus must be declared nondeterministic")
	}
	results := ty.Apply(Init("1"), codec.Set([]string{"0"}))
	if len(results) < 2 {
		t.Errorf("expected multiple permitted results, got %d", len(results))
	}
}

func TestCounterSemantics(t *testing.T) {
	ty := Counter()
	val := ty.Initials[0]
	for i := 0; i < 5; i++ {
		r, err := ty.ApplyOne("inc", val)
		if err != nil {
			t.Fatal(err)
		}
		if r.Resp != strconv.Itoa(i) {
			t.Errorf("inc %d: resp %q", i, r.Resp)
		}
		val = r.NewVal
	}
	r, _ := ty.ApplyOne(Read, val)
	if r.Resp != "5" {
		t.Errorf("read after 5 incs: %q", r.Resp)
	}
}

func TestQueueFIFO(t *testing.T) {
	ty := Queue()
	val := ty.Initials[0]
	for _, v := range []string{"a", "b", "c"} {
		r, err := ty.ApplyOne("enq("+v+")", val)
		if err != nil || r.Resp != Ack {
			t.Fatalf("enq: %v %v", r, err)
		}
		val = r.NewVal
	}
	for _, want := range []string{"a", "b", "c", "empty"} {
		r, err := ty.ApplyOne("deq", val)
		if err != nil {
			t.Fatal(err)
		}
		if r.Resp != want {
			t.Errorf("deq: got %q, want %q", r.Resp, want)
		}
		val = r.NewVal
	}
}

func TestTestAndSet(t *testing.T) {
	ty := TestAndSet()
	r, _ := ty.ApplyOne("tas", "0")
	if r.Resp != "0" || r.NewVal != "1" {
		t.Errorf("first tas: %v", r)
	}
	r, _ = ty.ApplyOne("tas", r.NewVal)
	if r.Resp != "1" || r.NewVal != "1" {
		t.Errorf("second tas: %v", r)
	}
	r, _ = ty.ApplyOne("reset", r.NewVal)
	if r.NewVal != "0" {
		t.Errorf("reset: %v", r)
	}
}

func TestCompareAndSwap(t *testing.T) {
	ty := CompareAndSwap([]string{"x", "y"}, "x")
	r, _ := ty.ApplyOne("cas(x,y)", "x")
	if r.Resp != "1" || r.NewVal != "y" {
		t.Errorf("successful cas: %v", r)
	}
	r, _ = ty.ApplyOne("cas(x,y)", "y")
	if r.Resp != "0" || r.NewVal != "y" {
		t.Errorf("failed cas: %v", r)
	}
}

func TestFetchAdd(t *testing.T) {
	ty := FetchAdd()
	r, _ := ty.ApplyOne("fadd(3)", "0")
	if r.Resp != "0" || r.NewVal != "3" {
		t.Errorf("fadd(3): %v", r)
	}
	r, _ = ty.ApplyOne("fadd(-5)", r.NewVal)
	if r.Resp != "3" || r.NewVal != "-2" {
		t.Errorf("fadd(-5): %v", r)
	}
}

func TestInitDecideHelpers(t *testing.T) {
	if v, ok := InitValue(Init("7")); !ok || v != "7" {
		t.Errorf("InitValue: %v %v", v, ok)
	}
	if v, ok := DecideValue(Decide("1")); !ok || v != "1" {
		t.Errorf("DecideValue: %v %v", v, ok)
	}
	if _, ok := InitValue("decide(1)"); ok {
		t.Error("InitValue accepted decide")
	}
	if _, ok := DecideValue("nonsense"); ok {
		t.Error("DecideValue accepted nonsense")
	}
}

func TestApplyOnePrefersFirstResult(t *testing.T) {
	// The deterministic restriction of a nondeterministic type must be
	// stable: repeated ApplyOne calls give identical outcomes.
	ty := KSetConsensus(2, 3)
	a, err1 := ty.ApplyOne(Init("2"), codec.Set([]string{"0"}))
	b, err2 := ty.ApplyOne(Init("2"), codec.Set([]string{"0"}))
	if err1 != nil || err2 != nil || a != b {
		t.Errorf("ApplyOne unstable: %v vs %v (%v %v)", a, b, err1, err2)
	}
}
