package seqtype

import (
	"strconv"
	"testing"
	"testing/quick"

	"github.com/ioa-lab/boosting/internal/codec"
)

// Model-based property tests: drive each sequential type with random
// operation scripts and compare against a plain Go reference model.

func TestQueueAgainstSliceModel(t *testing.T) {
	ty := Queue()
	f := func(script []byte) bool {
		if len(script) > 60 {
			script = script[:60]
		}
		val := ty.Initials[0]
		var model []string
		for _, b := range script {
			if b%3 == 0 {
				r, err := ty.ApplyOne("deq", val)
				if err != nil {
					return false
				}
				val = r.NewVal
				if len(model) == 0 {
					if r.Resp != "empty" {
						return false
					}
				} else {
					if r.Resp != model[0] {
						return false
					}
					model = model[1:]
				}
			} else {
				item := "v" + strconv.Itoa(int(b%7))
				r, err := ty.ApplyOne("enq("+item+")", val)
				if err != nil || r.Resp != Ack {
					return false
				}
				val = r.NewVal
				model = append(model, item)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounterAgainstIntModel(t *testing.T) {
	ty := Counter()
	f := func(script []byte) bool {
		if len(script) > 60 {
			script = script[:60]
		}
		val := ty.Initials[0]
		model := 0
		for _, b := range script {
			if b%2 == 0 {
				r, err := ty.ApplyOne("inc", val)
				if err != nil || r.Resp != strconv.Itoa(model) {
					return false
				}
				val = r.NewVal
				model++
			} else {
				r, err := ty.ApplyOne(Read, val)
				if err != nil || r.Resp != strconv.Itoa(model) {
					return false
				}
				val = r.NewVal
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFetchAddAgainstIntModel(t *testing.T) {
	ty := FetchAdd()
	f := func(deltas []int8) bool {
		if len(deltas) > 50 {
			deltas = deltas[:50]
		}
		val := ty.Initials[0]
		model := 0
		for _, d := range deltas {
			inv := "fadd(" + strconv.Itoa(int(d)) + ")"
			r, err := ty.ApplyOne(inv, val)
			if err != nil || r.Resp != strconv.Itoa(model) {
				return false
			}
			val = r.NewVal
			model += int(d)
		}
		r, err := ty.ApplyOne(Read, val)
		return err == nil && r.Resp == strconv.Itoa(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAndSwapAgainstModel(t *testing.T) {
	vals := []string{"x", "y", "z"}
	ty := CompareAndSwap(vals, "x")
	f := func(script []byte) bool {
		if len(script) > 50 {
			script = script[:50]
		}
		val := ty.Initials[0]
		model := "x"
		for _, b := range script {
			oldV := vals[int(b)%3]
			newV := vals[int(b/3)%3]
			r, err := ty.ApplyOne("cas("+oldV+","+newV+")", val)
			if err != nil {
				return false
			}
			val = r.NewVal
			if model == oldV {
				if r.Resp != "1" {
					return false
				}
				model = newV
			} else if r.Resp != "0" {
				return false
			}
			if val != model {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKSetDecisionsAlwaysFromW(t *testing.T) {
	// Property: every permitted result decides a member of the *new* W, and
	// W never loses members.
	ty := KSetConsensus(3, 6)
	f := func(script []byte) bool {
		if len(script) > 30 {
			script = script[:30]
		}
		val := ty.Initials[0]
		for _, b := range script {
			inv := Init(strconv.Itoa(int(b) % 6))
			results := ty.Apply(inv, val)
			if len(results) == 0 {
				return false
			}
			oldW, _ := codec.ParseSet(val)
			for _, r := range results {
				newW, err := codec.ParseSet(r.NewVal)
				if err != nil {
					return false
				}
				// Monotone: oldW ⊆ newW.
				member := map[string]bool{}
				for _, m := range newW {
					member[m] = true
				}
				for _, m := range oldW {
					if !member[m] {
						return false
					}
				}
				// Decision from newW.
				d, ok := DecideValue(r.Resp)
				if !ok || !member[d] {
					return false
				}
			}
			val = results[int(b)%len(results)].NewVal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortedSetAgainstMapModel(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	ty := SortedSet(keys)
	if err := ty.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(script []byte) bool {
		if len(script) > 60 {
			script = script[:60]
		}
		val := ty.Initials[0]
		model := map[string]bool{}
		for _, b := range script {
			k := keys[int(b)%len(keys)]
			var inv, want string
			switch (b / 4) % 4 {
			case 0:
				inv = "insert(" + k + ")"
				if model[k] {
					want = "0"
				} else {
					want = "1"
				}
				model[k] = true
			case 1:
				inv = "remove(" + k + ")"
				if model[k] {
					want = "1"
				} else {
					want = "0"
				}
				delete(model, k)
			case 2:
				inv = "member(" + k + ")"
				if model[k] {
					want = "1"
				} else {
					want = "0"
				}
			case 3:
				inv = "min"
				want = "none"
				for _, cand := range keys {
					if model[cand] {
						want = cand
						break
					}
				}
			}
			r, err := ty.ApplyOne(inv, val)
			if err != nil || r.Resp != want {
				return false
			}
			val = r.NewVal
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortedSetAsCanonicalObjectHistory(t *testing.T) {
	// The sorted set drives the linearizability substrate too: its δ is a
	// plain function, so it drops into the same canonical-object engine.
	ty := SortedSet([]string{"x", "y"})
	r, err := ty.ApplyOne("insert(x)", ty.Initials[0])
	if err != nil || r.Resp != "1" {
		t.Fatalf("insert: %v %v", r, err)
	}
	r2, err := ty.ApplyOne("min", r.NewVal)
	if err != nil || r2.Resp != "x" {
		t.Fatalf("min: %v %v", r2, err)
	}
}
