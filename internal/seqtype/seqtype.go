// Package seqtype implements sequential types, the specifications of atomic
// object behaviour (paper Section 2.1.2).
//
// A sequential type T = ⟨V, V0, invs, resps, δ⟩ consists of a value set, a
// nonempty set of initial values, invocation and response sets, and a total
// transition relation δ from invs × V to resps × V. The paper allows
// nondeterminism both in the initial value and in δ (needed, e.g., for
// k-set-consensus); determinism is the special case of a singleton V0 and a
// functional δ.
//
// Values, invocations and responses are canonical strings (see
// internal/codec), which makes every sequential type value directly usable
// in state fingerprints.
package seqtype

import (
	"errors"
	"fmt"
	"strings"
)

// Result is one (response, new value) pair permitted by δ for a given
// (invocation, value) pair.
type Result struct {
	Resp   string
	NewVal string
}

// Type is a sequential type. Invocation membership is given by a predicate
// (invocation sets may be infinite, e.g. write(v) for arbitrary v); SampleVals
// and SampleInvs give finite probes used by Validate and by property tests.
type Type struct {
	// Name identifies the type, e.g. "read/write" or "consensus".
	Name string

	// Initials is V0, the nonempty set of initial values.
	Initials []string

	// IsInv reports whether a string is an invocation of the type.
	IsInv func(inv string) bool

	// Apply is δ: it returns every (response, new value) pair related to
	// (inv, val). For an invocation of the type, Apply must return at least
	// one result (δ is total). For a non-invocation it returns nil.
	Apply func(inv, val string) []Result

	// Deterministic declares whether the type is deterministic (singleton V0
	// and functional δ). Validate checks the claim on the samples.
	Deterministic bool

	// SampleVals and SampleInvs are representative values/invocations used
	// for validation and property-based testing.
	SampleVals []string
	SampleInvs []string
}

// Errors reported by Validate.
var (
	ErrNoInitial        = errors.New("seqtype: V0 is empty")
	ErrNotTotal         = errors.New("seqtype: δ is not total")
	ErrNotDeterministic = errors.New("seqtype: type declared deterministic but is not")
	ErrBadSample        = errors.New("seqtype: sample invocation not recognized by IsInv")
)

// Validate checks the structural requirements of a sequential type against
// its samples: V0 nonempty; δ total on SampleInvs × SampleVals; and, if the
// type is declared deterministic, |V0| = 1 and δ functional on the samples.
func (t *Type) Validate() error {
	if len(t.Initials) == 0 {
		return fmt.Errorf("%w (type %s)", ErrNoInitial, t.Name)
	}
	if t.Deterministic && len(t.Initials) != 1 {
		return fmt.Errorf("%w: |V0| = %d (type %s)", ErrNotDeterministic, len(t.Initials), t.Name)
	}
	vals := append([]string{}, t.SampleVals...)
	vals = append(vals, t.Initials...)
	for _, inv := range t.SampleInvs {
		if !t.IsInv(inv) {
			return fmt.Errorf("%w: %q (type %s)", ErrBadSample, inv, t.Name)
		}
		for _, v := range vals {
			results := t.Apply(inv, v)
			if len(results) == 0 {
				return fmt.Errorf("%w: no result for (%q, %q) (type %s)", ErrNotTotal, inv, v, t.Name)
			}
			if t.Deterministic && len(results) > 1 {
				return fmt.Errorf("%w: %d results for (%q, %q) (type %s)",
					ErrNotDeterministic, len(results), inv, v, t.Name)
			}
		}
	}
	return nil
}

// ApplyOne applies δ deterministically, returning the unique result. It is
// the transition(e, s) device of Section 3.1: after the determinism
// restriction, every (invocation, value) pair has exactly one outcome. For a
// nondeterministic type it resolves the choice by taking the first result,
// which is the "remove transitions" restriction the paper licenses.
func (t *Type) ApplyOne(inv, val string) (Result, error) {
	results := t.Apply(inv, val)
	if len(results) == 0 {
		return Result{}, fmt.Errorf("seqtype %s: δ undefined for (%q, %q)", t.Name, inv, val)
	}
	return results[0], nil
}

// parseCall splits an invocation of the form "op(arg1,arg2,...)" into the
// operation name and raw argument string. An invocation without parentheses
// is an operation with no arguments.
func parseCall(inv string) (op, args string, ok bool) {
	open := strings.IndexByte(inv, '(')
	if open < 0 {
		return inv, "", true
	}
	if !strings.HasSuffix(inv, ")") {
		return "", "", false
	}
	return inv[:open], inv[open+1 : len(inv)-1], true
}
