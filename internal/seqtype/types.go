package seqtype

import (
	"strconv"
	"strings"

	"github.com/ioa-lab/boosting/internal/codec"
)

// Invocation and response constructors shared by the concrete types below.

// Read is the read invocation of the read/write type.
const Read = "read"

// Write builds a write(v) invocation.
func Write(v string) string { return "write(" + v + ")" }

// Ack is the response to a write.
const Ack = "ack"

// Init builds an init(v) invocation of the consensus and k-set-consensus
// types (Section 2.1.2).
func Init(v string) string { return "init(" + v + ")" }

// Decide builds a decide(v) response.
func Decide(v string) string { return "decide(" + v + ")" }

// DecideValue extracts v from a decide(v) response; ok is false if the
// string is not a decide response.
func DecideValue(resp string) (string, bool) {
	op, args, okc := parseCall(resp)
	if !okc || op != "decide" {
		return "", false
	}
	return args, true
}

// InitValue extracts v from an init(v) invocation.
func InitValue(inv string) (string, bool) {
	op, args, okc := parseCall(inv)
	if !okc || op != "init" {
		return "", false
	}
	return args, true
}

// ReadWrite returns the read/write sequential type over the given value set
// with the given initial value (paper Section 2.1.2, first example). It is
// deterministic.
func ReadWrite(values []string, initial string) *Type {
	vset := make(map[string]struct{}, len(values))
	for _, v := range values {
		vset[v] = struct{}{}
	}
	if _, ok := vset[initial]; !ok {
		vset[initial] = struct{}{}
		values = append(append([]string{}, values...), initial)
	}
	invs := []string{Read}
	for _, v := range values {
		invs = append(invs, Write(v))
	}
	return &Type{
		Name:          "read/write",
		Initials:      []string{initial},
		Deterministic: true,
		IsInv: func(inv string) bool {
			if inv == Read {
				return true
			}
			op, args, ok := parseCall(inv)
			if !ok || op != "write" {
				return false
			}
			_, member := vset[args]
			return member
		},
		Apply: func(inv, val string) []Result {
			if inv == Read {
				return []Result{{Resp: val, NewVal: val}}
			}
			op, args, ok := parseCall(inv)
			if !ok || op != "write" {
				return nil
			}
			if _, member := vset[args]; !member {
				return nil
			}
			return []Result{{Resp: Ack, NewVal: args}}
		},
		SampleVals: values,
		SampleInvs: invs,
	}
}

// Consensus value encoding: the paper's V = {∅, {0}, {1}} is encoded as
// "" (undecided), "0", and "1".

// BinaryConsensus returns the binary consensus sequential type (paper
// Section 2.1.2, second example). The first init fixes the value; every
// operation returns decide of the fixed value. Deterministic.
func BinaryConsensus() *Type {
	return &Type{
		Name:          "consensus",
		Initials:      []string{""},
		Deterministic: true,
		IsInv: func(inv string) bool {
			v, ok := InitValue(inv)
			return ok && (v == "0" || v == "1")
		},
		Apply: func(inv, val string) []Result {
			v, ok := InitValue(inv)
			if !ok || (v != "0" && v != "1") {
				return nil
			}
			if val == "" {
				return []Result{{Resp: Decide(v), NewVal: v}}
			}
			return []Result{{Resp: Decide(val), NewVal: val}}
		},
		SampleVals: []string{"", "0", "1"},
		SampleInvs: []string{Init("0"), Init("1")},
	}
}

// KSetConsensus returns the k-set-consensus sequential type for proposal
// space {0, ..., n-1} (paper Section 2.1.2, third example). The value is the
// set W of remembered proposals (at most k), encoded with codec.Set; an
// operation adds its proposal while |W| < k and may return any element of
// the resulting set. This type is genuinely nondeterministic — the paper
// notes k-set-consensus cannot be specified by a deterministic sequential
// type.
func KSetConsensus(k, n int) *Type {
	isProposal := func(v string) bool {
		x, err := strconv.Atoi(v)
		return err == nil && x >= 0 && x < n
	}
	sampleInvs := make([]string, 0, n)
	for v := 0; v < n; v++ {
		sampleInvs = append(sampleInvs, Init(strconv.Itoa(v)))
	}
	return &Type{
		Name:          "k-set-consensus(k=" + strconv.Itoa(k) + ",n=" + strconv.Itoa(n) + ")",
		Initials:      []string{codec.Set(nil)},
		Deterministic: false,
		IsInv: func(inv string) bool {
			v, ok := InitValue(inv)
			return ok && isProposal(v)
		},
		Apply: func(inv, val string) []Result {
			v, ok := InitValue(inv)
			if !ok || !isProposal(v) {
				return nil
			}
			w, err := codec.ParseSet(val)
			if err != nil {
				return nil
			}
			if len(w) < k {
				// |W| < k: remember v, return any v' ∈ W ∪ {v}.
				next := codec.Set(append(append([]string{}, w...), v))
				members, _ := codec.ParseSet(next)
				out := make([]Result, 0, len(members))
				// Put v first so that ApplyOne (the deterministic
				// restriction) favours "first value wins" behaviour.
				out = append(out, Result{Resp: Decide(v), NewVal: next})
				for _, m := range members {
					if m != v {
						out = append(out, Result{Resp: Decide(m), NewVal: next})
					}
				}
				return out
			}
			// |W| = k: return any v' ∈ W, value unchanged.
			out := make([]Result, 0, len(w))
			for _, m := range w {
				out = append(out, Result{Resp: Decide(m), NewVal: val})
			}
			return out
		},
		SampleVals: []string{codec.Set(nil), codec.Set([]string{"0"}), codec.Set([]string{"0", "1"})},
		SampleInvs: sampleInvs,
	}
}

// Counter returns a fetch-and-increment counter type: "inc" returns the
// pre-increment value; "read" returns the current value. Deterministic.
func Counter() *Type {
	return &Type{
		Name:          "counter",
		Initials:      []string{"0"},
		Deterministic: true,
		IsInv:         func(inv string) bool { return inv == "inc" || inv == Read },
		Apply: func(inv, val string) []Result {
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil
			}
			switch inv {
			case "inc":
				return []Result{{Resp: val, NewVal: strconv.Itoa(n + 1)}}
			case Read:
				return []Result{{Resp: val, NewVal: val}}
			}
			return nil
		},
		SampleVals: []string{"0", "1", "7"},
		SampleInvs: []string{"inc", Read},
	}
}

// Queue returns a FIFO queue type: "enq(v)" returns ack; "deq" returns the
// head or "empty". The value is a codec.List of elements. Deterministic.
func Queue() *Type {
	return &Type{
		Name:          "queue",
		Initials:      []string{codec.List(nil)},
		Deterministic: true,
		IsInv: func(inv string) bool {
			if inv == "deq" {
				return true
			}
			op, _, ok := parseCall(inv)
			return ok && op == "enq"
		},
		Apply: func(inv, val string) []Result {
			items, err := codec.ParseList(val)
			if err != nil {
				return nil
			}
			if inv == "deq" {
				if len(items) == 0 {
					return []Result{{Resp: "empty", NewVal: val}}
				}
				return []Result{{Resp: items[0], NewVal: codec.List(items[1:])}}
			}
			op, arg, ok := parseCall(inv)
			if !ok || op != "enq" {
				return nil
			}
			return []Result{{Resp: Ack, NewVal: codec.List(append(append([]string{}, items...), arg))}}
		},
		SampleVals: []string{codec.List(nil), codec.List([]string{"a"}), codec.List([]string{"a", "b"})},
		SampleInvs: []string{"enq(a)", "enq(b)", "deq"},
	}
}

// TestAndSet returns a test&set bit: "tas" returns the old value and sets
// the bit; "reset" clears it. Deterministic.
func TestAndSet() *Type {
	return &Type{
		Name:          "test&set",
		Initials:      []string{"0"},
		Deterministic: true,
		IsInv:         func(inv string) bool { return inv == "tas" || inv == "reset" },
		Apply: func(inv, val string) []Result {
			switch inv {
			case "tas":
				return []Result{{Resp: val, NewVal: "1"}}
			case "reset":
				return []Result{{Resp: Ack, NewVal: "0"}}
			}
			return nil
		},
		SampleVals: []string{"0", "1"},
		SampleInvs: []string{"tas", "reset"},
	}
}

// CompareAndSwap returns a compare&swap cell over the given value set:
// "cas(old,new)" returns "1" and installs new if the value equals old,
// else "0"; "read" returns the value. Deterministic.
func CompareAndSwap(values []string, initial string) *Type {
	vset := make(map[string]struct{}, len(values)+1)
	for _, v := range values {
		vset[v] = struct{}{}
	}
	vset[initial] = struct{}{}
	sampleInvs := []string{Read}
	for _, a := range values {
		for _, b := range values {
			sampleInvs = append(sampleInvs, "cas("+a+","+b+")")
		}
	}
	return &Type{
		Name:          "compare&swap",
		Initials:      []string{initial},
		Deterministic: true,
		IsInv: func(inv string) bool {
			if inv == Read {
				return true
			}
			op, args, ok := parseCall(inv)
			if !ok || op != "cas" {
				return false
			}
			parts := strings.SplitN(args, ",", 2)
			if len(parts) != 2 {
				return false
			}
			_, a := vset[parts[0]]
			_, b := vset[parts[1]]
			return a && b
		},
		Apply: func(inv, val string) []Result {
			if inv == Read {
				return []Result{{Resp: val, NewVal: val}}
			}
			op, args, ok := parseCall(inv)
			if !ok || op != "cas" {
				return nil
			}
			parts := strings.SplitN(args, ",", 2)
			if len(parts) != 2 {
				return nil
			}
			if val == parts[0] {
				return []Result{{Resp: "1", NewVal: parts[1]}}
			}
			return []Result{{Resp: "0", NewVal: val}}
		},
		SampleVals: append([]string{initial}, values...),
		SampleInvs: sampleInvs,
	}
}

// FetchAdd returns a fetch-and-add register: "fadd(d)" returns the old value
// and adds d; "read" returns the value. Deterministic.
func FetchAdd() *Type {
	return &Type{
		Name:          "fetch&add",
		Initials:      []string{"0"},
		Deterministic: true,
		IsInv: func(inv string) bool {
			if inv == Read {
				return true
			}
			op, args, ok := parseCall(inv)
			if !ok || op != "fadd" {
				return false
			}
			_, err := strconv.Atoi(args)
			return err == nil
		},
		Apply: func(inv, val string) []Result {
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil
			}
			if inv == Read {
				return []Result{{Resp: val, NewVal: val}}
			}
			op, args, ok := parseCall(inv)
			if !ok || op != "fadd" {
				return nil
			}
			d, err := strconv.Atoi(args)
			if err != nil {
				return nil
			}
			return []Result{{Resp: val, NewVal: strconv.Itoa(n + d)}}
		},
		SampleVals: []string{"0", "5", "-2"},
		SampleInvs: []string{Read, "fadd(1)", "fadd(-3)"},
	}
}

// SortedSet returns a dictionary sequential type over a finite key space —
// the paper's intro lists "concurrently-accessible data structures such as
// balanced trees" among services; this is such a structure as a sequential
// type (the canonical automaton then provides the concurrent, resilient
// object). Operations: "insert(k)" → "1" if newly added else "0";
// "remove(k)" → "1" if present else "0"; "member(k)" → "0"/"1";
// "min" → smallest member or "none". The value is a codec.Set of keys.
// Deterministic.
func SortedSet(keys []string) *Type {
	kset := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		kset[k] = struct{}{}
	}
	sampleInvs := []string{"min"}
	for _, k := range keys {
		sampleInvs = append(sampleInvs, "insert("+k+")", "remove("+k+")", "member("+k+")")
	}
	member := func(items []string, k string) bool {
		for _, it := range items {
			if it == k {
				return true
			}
		}
		return false
	}
	return &Type{
		Name:          "sorted-set",
		Initials:      []string{codec.Set(nil)},
		Deterministic: true,
		IsInv: func(inv string) bool {
			if inv == "min" {
				return true
			}
			op, arg, ok := parseCall(inv)
			if !ok {
				return false
			}
			switch op {
			case "insert", "remove", "member":
				_, in := kset[arg]
				return in
			}
			return false
		},
		Apply: func(inv, val string) []Result {
			items, err := codec.ParseSet(val)
			if err != nil {
				return nil
			}
			if inv == "min" {
				if len(items) == 0 {
					return []Result{{Resp: "none", NewVal: val}}
				}
				// codec.Set keeps members sorted.
				return []Result{{Resp: items[0], NewVal: val}}
			}
			op, arg, ok := parseCall(inv)
			if !ok {
				return nil
			}
			if _, in := kset[arg]; !in {
				return nil
			}
			switch op {
			case "insert":
				if member(items, arg) {
					return []Result{{Resp: "0", NewVal: val}}
				}
				return []Result{{Resp: "1", NewVal: codec.Set(append(items, arg))}}
			case "remove":
				if !member(items, arg) {
					return []Result{{Resp: "0", NewVal: val}}
				}
				rest := make([]string, 0, len(items)-1)
				for _, it := range items {
					if it != arg {
						rest = append(rest, it)
					}
				}
				return []Result{{Resp: "1", NewVal: codec.Set(rest)}}
			case "member":
				if member(items, arg) {
					return []Result{{Resp: "1", NewVal: val}}
				}
				return []Result{{Resp: "0", NewVal: val}}
			}
			return nil
		},
		SampleVals: []string{codec.Set(nil), codec.Set([]string{keys[0]})},
		SampleInvs: sampleInvs,
	}
}
