// Package ioa defines the vocabulary of the I/O automaton model of Lynch and
// Tuttle as used by the paper (Section 2.1.1): actions and their kinds,
// tasks, execution steps, and traces.
//
// The composed system of the paper (Section 2.2.3) has a fixed architecture
// — processes interacting with services and registers — so rather than a
// fully generic composition operator, this package provides the structured
// action and task types for that architecture. The composition itself lives
// in internal/system.
package ioa

import (
	"fmt"
	"strconv"
)

// Kind classifies an action relative to an automaton's signature.
type Kind int

// Action kinds. Input actions are controlled by the environment; output and
// internal actions are locally controlled. In the composed system, after
// hiding the process/service communication, the only external actions are
// init (input), decide (output), and fail (input).
const (
	KindInput Kind = iota + 1
	KindOutput
	KindInternal
)

// String renders a Kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	case KindInternal:
		return "internal"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// ActionType identifies the structural role of an action in the composed
// system of Section 2.2.
type ActionType int

// Action types of the composed system. The correspondence to the paper:
//
//   - ActInit / ActDecide: the external consensus interface init(v)_i,
//     decide(v)_i of Section 2.2.4 (or, for other implemented types, the
//     generic external invocation/response at a process).
//   - ActInvoke / ActRespond: a_{i,c} invocations and b_{i,c} responses
//     between process P_i and service S_c.
//   - ActPerform / ActCompute: the internal perform_{i,k} and compute_{g,k}
//     actions of canonical services (Figs. 1, 4, 8).
//   - ActDummyPerform / ActDummyOutput / ActDummyCompute: the dummy actions
//     that let a service fall silent once its resilience is exhausted.
//   - ActProcStep / ActProcDummy: a process's locally controlled step (the
//     single process task), or its dummy step when it has nothing to do.
//   - ActFail: the fail_i input, delivered to P_i and to every service with
//     i among its endpoints.
const (
	ActInit ActionType = iota + 1
	ActDecide
	ActInvoke
	ActRespond
	ActPerform
	ActCompute
	ActDummyPerform
	ActDummyOutput
	ActDummyCompute
	ActProcStep
	ActProcDummy
	ActFail
)

// String renders an ActionType for diagnostics.
func (t ActionType) String() string {
	switch t {
	case ActInit:
		return "init"
	case ActDecide:
		return "decide"
	case ActInvoke:
		return "invoke"
	case ActRespond:
		return "respond"
	case ActPerform:
		return "perform"
	case ActCompute:
		return "compute"
	case ActDummyPerform:
		return "dummy_perform"
	case ActDummyOutput:
		return "dummy_output"
	case ActDummyCompute:
		return "dummy_compute"
	case ActProcStep:
		return "proc_step"
	case ActProcDummy:
		return "proc_dummy"
	case ActFail:
		return "fail"
	default:
		return "action(" + strconv.Itoa(int(t)) + ")"
	}
}

// Action is one labelled transition of the composed system. Fields that do
// not apply are zero: Proc is -1 when no process participates, Service is ""
// when no service participates.
type Action struct {
	Type    ActionType
	Proc    int    // endpoint/process index, or -1
	Service string // service or register index, or ""
	Payload string // invocation/response payload, or global task name for compute
}

// NoProc is the Proc value of actions with no process participant.
const NoProc = -1

// Kind returns the action's kind relative to the composed (hidden) system:
// init and fail are inputs, decide is an output, everything else is internal.
func (a Action) Kind() Kind {
	switch a.Type {
	case ActInit, ActFail:
		return KindInput
	case ActDecide:
		return KindOutput
	default:
		return KindInternal
	}
}

// External reports whether the action is visible in traces of the composed
// system (Section 2.2.3 hides all process/service communication).
func (a Action) External() bool {
	return a.Kind() != KindInternal
}

// String renders the action in the paper's notation, e.g. "init(1)_2",
// "a(read)_1,r0", "perform_2,k1", "fail_0".
func (a Action) String() string {
	switch a.Type {
	case ActInit:
		return fmt.Sprintf("init(%s)_%d", a.Payload, a.Proc)
	case ActDecide:
		return fmt.Sprintf("decide(%s)_%d", a.Payload, a.Proc)
	case ActInvoke:
		return fmt.Sprintf("a(%s)_%d,%s", a.Payload, a.Proc, a.Service)
	case ActRespond:
		return fmt.Sprintf("b(%s)_%d,%s", a.Payload, a.Proc, a.Service)
	case ActPerform:
		return fmt.Sprintf("perform_%d,%s", a.Proc, a.Service)
	case ActCompute:
		return fmt.Sprintf("compute_%s,%s", a.Payload, a.Service)
	case ActDummyPerform:
		return fmt.Sprintf("dummy_perform_%d,%s", a.Proc, a.Service)
	case ActDummyOutput:
		return fmt.Sprintf("dummy_output_%d,%s", a.Proc, a.Service)
	case ActDummyCompute:
		return fmt.Sprintf("dummy_compute_%s,%s", a.Payload, a.Service)
	case ActProcStep:
		return fmt.Sprintf("step_%d", a.Proc)
	case ActProcDummy:
		return fmt.Sprintf("dummy_step_%d", a.Proc)
	case ActFail:
		return fmt.Sprintf("fail_%d", a.Proc)
	default:
		return fmt.Sprintf("%v{proc=%d,svc=%s,payload=%s}", a.Type, a.Proc, a.Service, a.Payload)
	}
}
