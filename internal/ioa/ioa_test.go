package ioa

import (
	"strings"
	"testing"
)

func TestActionKinds(t *testing.T) {
	cases := []struct {
		a    Action
		kind Kind
		ext  bool
	}{
		{Action{Type: ActInit, Proc: 1, Payload: "0"}, KindInput, true},
		{Action{Type: ActFail, Proc: 2}, KindInput, true},
		{Action{Type: ActDecide, Proc: 0, Payload: "1"}, KindOutput, true},
		{Action{Type: ActInvoke, Proc: 1, Service: "k0", Payload: "init(0)"}, KindInternal, false},
		{Action{Type: ActRespond, Proc: 1, Service: "r0", Payload: "ack"}, KindInternal, false},
		{Action{Type: ActPerform, Proc: 1, Service: "k0"}, KindInternal, false},
		{Action{Type: ActCompute, Service: "k0", Payload: "g", Proc: NoProc}, KindInternal, false},
		{Action{Type: ActDummyPerform, Proc: 1, Service: "k0"}, KindInternal, false},
		{Action{Type: ActProcStep, Proc: 1}, KindInternal, false},
	}
	for _, c := range cases {
		if got := c.a.Kind(); got != c.kind {
			t.Errorf("%v: Kind = %v, want %v", c.a, got, c.kind)
		}
		if got := c.a.External(); got != c.ext {
			t.Errorf("%v: External = %v, want %v", c.a, got, c.ext)
		}
	}
}

func TestActionString(t *testing.T) {
	cases := []struct {
		a    Action
		want string
	}{
		{Action{Type: ActInit, Proc: 2, Payload: "1"}, "init(1)_2"},
		{Action{Type: ActDecide, Proc: 0, Payload: "0"}, "decide(0)_0"},
		{Action{Type: ActInvoke, Proc: 1, Service: "k0", Payload: "read"}, "a(read)_1,k0"},
		{Action{Type: ActRespond, Proc: 1, Service: "k0", Payload: "v"}, "b(v)_1,k0"},
		{Action{Type: ActPerform, Proc: 3, Service: "r1"}, "perform_3,r1"},
		{Action{Type: ActCompute, Service: "k2", Payload: "g", Proc: NoProc}, "compute_g,k2"},
		{Action{Type: ActFail, Proc: 4}, "fail_4"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String: got %q, want %q", got, c.want)
		}
	}
}

func TestTaskConstructorsAndString(t *testing.T) {
	cases := []struct {
		task Task
		want string
	}{
		{ProcessTask(3), "P3"},
		{PerformTask("k1", 2), "perform_2@k1"},
		{OutputTask("k1", 2), "output_2@k1"},
		{ComputeTask("k1", "g"), "compute_g@k1"},
	}
	for _, c := range cases {
		if got := c.task.String(); got != c.want {
			t.Errorf("Task.String: got %q, want %q", got, c.want)
		}
	}
}

func TestTaskComparable(t *testing.T) {
	m := map[Task]int{}
	m[ProcessTask(1)] = 1
	m[PerformTask("k0", 1)] = 2
	m[PerformTask("k0", 1)] = 3
	if len(m) != 2 {
		t.Errorf("tasks should be usable as map keys with value equality; got %d entries", len(m))
	}
}

func TestExecutionAppendImmutable(t *testing.T) {
	var e Execution
	e1 := e.Append(Step{HasTask: true, Task: ProcessTask(0), Action: Action{Type: ActProcStep, Proc: 0}})
	e2 := e1.Append(Step{Action: Action{Type: ActFail, Proc: 1}})
	if e.Len() != 0 || e1.Len() != 1 || e2.Len() != 2 {
		t.Fatalf("lengths: %d %d %d", e.Len(), e1.Len(), e2.Len())
	}
	// Appending to e1 again must not corrupt e2.
	e3 := e1.Append(Step{Action: Action{Type: ActFail, Proc: 2}})
	if e2.Steps[1].Action.Proc != 1 || e3.Steps[1].Action.Proc != 2 {
		t.Error("Append shared storage between divergent extensions")
	}
}

func TestExecutionProjections(t *testing.T) {
	e := Execution{Steps: []Step{
		{Action: Action{Type: ActInit, Proc: 0, Payload: "0"}},
		{Action: Action{Type: ActInit, Proc: 1, Payload: "1"}},
		{HasTask: true, Task: ProcessTask(0), Action: Action{Type: ActInvoke, Proc: 0, Service: "k0", Payload: "init(0)"}},
		{HasTask: true, Task: PerformTask("k0", 0), Action: Action{Type: ActPerform, Proc: 0, Service: "k0"}},
		{Action: Action{Type: ActFail, Proc: 1}},
		{HasTask: true, Task: ProcessTask(0), Action: Action{Type: ActDecide, Proc: 0, Payload: "0"}},
	}}
	trace := e.Trace()
	if len(trace) != 4 {
		t.Fatalf("Trace: got %d actions, want 4 (%s)", len(trace), FormatTrace(trace))
	}
	if e.FailureFree() {
		t.Error("FailureFree: want false")
	}
	if got := e.Failed(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Failed: got %v", got)
	}
	if got := e.Decisions(); len(got) != 1 || got[0].Payload != "0" {
		t.Errorf("Decisions: got %v", got)
	}
	if got := e.Tasks(); len(got) != 3 {
		t.Errorf("Tasks: got %d, want 3", len(got))
	}
}

func TestExecutionString(t *testing.T) {
	e := Execution{Steps: []Step{
		{Action: Action{Type: ActInit, Proc: 0, Payload: "1"}},
		{HasTask: true, Task: ProcessTask(0), Action: Action{Type: ActDecide, Proc: 0, Payload: "1"}},
	}}
	s := e.String()
	if !strings.Contains(s, "init(1)_0") || !strings.Contains(s, "decide(1)_0") {
		t.Errorf("String: got %q", s)
	}
}
