package ioa

import "strings"

// Step is one transition of an execution: either a locally controlled step
// produced by scheduling a task (HasTask true) or an environment input
// (init or fail, HasTask false).
type Step struct {
	HasTask bool
	Task    Task
	Action  Action
	// After is the fingerprint of the state reached by this step; it lets
	// analyses detect revisited states without re-running prefixes.
	After string
}

// Execution is a finite execution fragment of the composed system, recorded
// as the sequence of steps taken from some known initial state. Because all
// components are deterministic (Section 3.1), an execution is fully
// reproducible from its inputs and task sequence.
type Execution struct {
	Steps []Step
}

// Append returns a new execution extended by one step. The receiver is not
// modified; prefixes may share underlying storage, so callers must treat
// executions as immutable (which the exploration code does).
func (e Execution) Append(s Step) Execution {
	steps := make([]Step, len(e.Steps), len(e.Steps)+1)
	copy(steps, e.Steps)
	return Execution{Steps: append(steps, s)}
}

// Len returns the number of steps.
func (e Execution) Len() int { return len(e.Steps) }

// Trace returns the external actions of the execution, in order
// (the trace of Section 2.1.1, after the hiding of Section 2.2.3).
func (e Execution) Trace() []Action {
	var out []Action
	for _, s := range e.Steps {
		if s.Action.External() {
			out = append(out, s.Action)
		}
	}
	return out
}

// Tasks returns the task sequence of the execution's locally controlled
// steps. Together with the input steps this determines the execution.
func (e Execution) Tasks() []Task {
	var out []Task
	for _, s := range e.Steps {
		if s.HasTask {
			out = append(out, s.Task)
		}
	}
	return out
}

// FailureFree reports whether the execution contains no fail actions.
func (e Execution) FailureFree() bool {
	for _, s := range e.Steps {
		if s.Action.Type == ActFail {
			return false
		}
	}
	return true
}

// Failed returns the set of processes failed along the execution, in order
// of failure.
func (e Execution) Failed() []int {
	var out []int
	for _, s := range e.Steps {
		if s.Action.Type == ActFail {
			out = append(out, s.Action.Proc)
		}
	}
	return out
}

// Decisions returns the decide actions in the execution, in order.
func (e Execution) Decisions() []Action {
	var out []Action
	for _, s := range e.Steps {
		if s.Action.Type == ActDecide {
			out = append(out, s.Action)
		}
	}
	return out
}

// String renders the execution as a one-line action sequence.
func (e Execution) String() string {
	parts := make([]string, len(e.Steps))
	for i, s := range e.Steps {
		parts[i] = s.Action.String()
	}
	return strings.Join(parts, " · ")
}

// FormatTrace renders a slice of actions (e.g. a trace) on one line.
func FormatTrace(actions []Action) string {
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = a.String()
	}
	return strings.Join(parts, " · ")
}
