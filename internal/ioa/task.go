package ioa

import (
	"fmt"
	"strconv"
)

// TaskKind classifies the tasks of the composed system (Section 2.2.3):
// each process has a single task; each service has an i-perform and an
// i-output task per endpoint i, and (for failure-oblivious and general
// services) a g-compute task per global task name g.
type TaskKind int

// Task kinds.
const (
	TaskProcess TaskKind = iota + 1
	TaskPerform
	TaskOutput
	TaskCompute
)

// String renders a TaskKind for diagnostics.
func (k TaskKind) String() string {
	switch k {
	case TaskProcess:
		return "process"
	case TaskPerform:
		return "perform"
	case TaskOutput:
		return "output"
	case TaskCompute:
		return "compute"
	default:
		return "task(" + strconv.Itoa(int(k)) + ")"
	}
}

// Task identifies one task of the composed system. Tasks partition the
// locally controlled actions; the I/O-automata fairness assumption gives
// every task infinitely many turns (Section 2.2.3).
type Task struct {
	Kind    TaskKind
	Proc    int    // process index for TaskProcess/TaskPerform/TaskOutput; -1 for TaskCompute
	Service string // service index for service tasks; "" for TaskProcess
	Global  string // global task name for TaskCompute; "" otherwise
}

// ProcessTask returns the single task of process P_i.
func ProcessTask(i int) Task {
	return Task{Kind: TaskProcess, Proc: i}
}

// PerformTask returns the i-perform task of service c.
func PerformTask(service string, i int) Task {
	return Task{Kind: TaskPerform, Proc: i, Service: service}
}

// OutputTask returns the i-output task of service c.
func OutputTask(service string, i int) Task {
	return Task{Kind: TaskOutput, Proc: i, Service: service}
}

// ComputeTask returns the g-compute task of service c.
func ComputeTask(service, g string) Task {
	return Task{Kind: TaskCompute, Proc: NoProc, Service: service, Global: g}
}

// String renders the task, e.g. "P2", "perform_1@k0", "compute_g@k0".
func (t Task) String() string {
	switch t.Kind {
	case TaskProcess:
		return fmt.Sprintf("P%d", t.Proc)
	case TaskPerform:
		return fmt.Sprintf("perform_%d@%s", t.Proc, t.Service)
	case TaskOutput:
		return fmt.Sprintf("output_%d@%s", t.Proc, t.Service)
	case TaskCompute:
		return fmt.Sprintf("compute_%s@%s", t.Global, t.Service)
	default:
		return fmt.Sprintf("task{%v,%d,%s,%s}", t.Kind, t.Proc, t.Service, t.Global)
	}
}
