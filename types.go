package boosting

import (
	"github.com/ioa-lab/boosting/internal/check"
	"github.com/ioa-lab/boosting/internal/explore"
	"github.com/ioa-lab/boosting/internal/ioa"
	"github.com/ioa-lab/boosting/internal/protocols"
	"github.com/ioa-lab/boosting/internal/service"
	"github.com/ioa-lab/boosting/internal/system"
)

// The façade's result and model types are aliases of the engine's: the
// public names are the stable API surface (guarded by the apidiff CI gate),
// while reports, witness renderings and CLI output stay byte-for-byte what
// the engine produces. Consumers never import the internal packages.

// Model types.
type (
	// System is a composed system C of processes, services and registers.
	System = system.System
	// State is one global state of a System (copy-on-write; values are
	// cheap to hand around).
	State = system.State
	// Action is one I/O-automaton action; Task a schedulable task.
	Action = ioa.Action
	// Task is a schedulable task of the composed automaton.
	Task = ioa.Task
	// Execution is a finite executed prefix: alternating states and steps.
	Execution = ioa.Execution
	// SilencePolicy says whether a service past its resilience bound
	// exercises its right to fall silent.
	SilencePolicy = service.SilencePolicy
)

// Silence policies.
const (
	// Adversarial services fall silent as soon as they are permitted to —
	// the worst case the impossibility proofs quantify over.
	Adversarial = service.Adversarial
	// Benign services never exercise the right to fall silent.
	Benign = service.Benign
)

// Graph types: the execution graph G(C) of Section 3.3.
type (
	// StateID is the dense index of a vertex of G(C), assigned in BFS
	// discovery order — identical for any worker count and store backend.
	StateID = explore.StateID
	// Graph is (a finite fragment of) G(C).
	Graph = explore.Graph
	// Edge is one labelled transition of G(C).
	Edge = explore.Edge
	// Valence classifies a vertex by the decisions reachable from it.
	Valence = explore.Valence
	// Progress is one streaming per-level exploration report.
	Progress = explore.Progress
	// ProgressFunc receives streaming Progress reports during exploration.
	ProgressFunc = explore.ProgressFunc
	// Store selects the vertex storage backend of G(C).
	Store = explore.StoreKind
	// VertexStore is the vertex face of the storage seam: the dedup index,
	// representative states and optional predecessor links.
	VertexStore = explore.VertexStore
	// AdjacencyStore is the adjacency face of the storage seam: edges are
	// recorded as discovered, sealed at level barriers, and streamed back
	// as an iterator, so backends keep them in slices or on disk.
	AdjacencyStore = explore.AdjacencyStore
	// StateStore is the full storage seam behind Graph: the vertex face
	// plus the adjacency face.
	StateStore = explore.StateStore
)

// Valences.
const (
	Unvalent   = explore.Unvalent
	ZeroValent = explore.ZeroValent
	OneValent  = explore.OneValent
	Bivalent   = explore.Bivalent
)

// Store backends. DenseStore interns every canonical fingerprint in full;
// the hash stores keep only a 64/128-bit fingerprint hash per vertex
// (SPIN-style hash compaction) and verify candidate matches against the
// stored representative state; SpillStore additionally moves fingerprints
// and representative states to an append-only spill file (TLC-style
// fingerprint file) and adjacency to a second append-only edge file of
// delta-varint successor blocks, keeping only 16 hash bytes plus two file
// offsets per vertex in RAM. All backends produce identical graphs —
// collisions are audited and resolved, never silently merged.
const (
	DenseStore   = explore.StoreDense
	HashStore64  = explore.StoreHash64
	HashStore128 = explore.StoreHash128
	SpillStore   = explore.StoreSpill
)

// StoreCollisions reports the audited hash-collision count of a graph's
// backend (always 0 for DenseStore).
func StoreCollisions(g *Graph) int { return explore.StoreCollisions(g) }

// SpillStats is the observability face of the SpillStore backend: vertex
// and resident counts, spill-file size, on-demand read count and the
// audited collision count.
type SpillStats = explore.SpillStats

// GraphSpillStats reports the spill-file statistics of a graph built with
// SpillStore (ok == false for every other backend).
func GraphSpillStats(g *Graph) (SpillStats, bool) { return explore.GraphSpillStats(g) }

// CloseGraph deterministically releases any external resources held by a
// graph's storage backend — the SpillStore descriptors for both the
// fingerprint file and the edge file — and is a no-op (nil) for the
// in-memory backends. The graph must not be used afterwards. Optional: an
// unclosed spill graph is reclaimed when the garbage collector runs its
// finalizers, but callers that churn through many spill-backed graphs
// should close each one rather than let descriptors accumulate against the
// process's fd limit.
func CloseGraph(g *Graph) error { return explore.CloseGraphStore(g) }

// Durable graph store types (WithGraphDir, Checker.OpenGraph,
// Checker.Recheck).
type (
	// Manifest describes one committed durable graph directory: format
	// version, shape and full-identity fingerprints, the build-option
	// tuple, graph counts, and the lengths and checksums binding the data
	// files. Treat returned manifests as read-only.
	Manifest = explore.Manifest
	// ManifestError reports a durable graph directory that cannot be
	// opened — missing, damaged, stale-format or identity-mismatched.
	// Recover it with errors.As.
	ManifestError = explore.ManifestError
	// RecheckResult is the outcome of Checker.Recheck: the spliced graph,
	// the monotone roots' valences under the modified candidate, and the
	// dirty-region accounting (BaseStates, Dirty, Fresh, ReachableStates,
	// ReachableEdges). Close it to release the base graph's store.
	RecheckResult = explore.RecheckResult
)

// GraphManifest returns the manifest of a durable graph — one built
// under WithGraphDir or reopened via Checker.OpenGraph — with ok == false
// for ephemeral graphs.
func GraphManifest(g *Graph) (*Manifest, bool) { return explore.GraphManifest(g) }

// GraphDir returns the durable directory a graph was committed to or
// reopened from ("" for ephemeral graphs).
func GraphDir(g *Graph) string { return explore.GraphDirOf(g) }

// HasGraph reports whether dir holds a committed durable graph manifest,
// without validating it: the cheap "is there anything here" probe ahead
// of Checker.OpenGraph.
func HasGraph(dir string) bool { return explore.HasManifest(dir) }

// Proof-machinery result types.
type (
	// InitClassification is the Lemma 4 sweep over the monotone
	// initializations.
	InitClassification = explore.InitClassification
	// Hook is the Fig. 2 pattern located by the Fig. 3 construction.
	Hook = explore.Hook
	// Divergence certifies an infinite fair bivalent execution.
	Divergence = explore.Divergence
	// HookSearchResult is the Fig. 3 outcome: a Hook or a Divergence.
	HookSearchResult = explore.HookSearchResult
	// Report is the outcome of a refutation.
	Report = explore.Report
	// Certificate is one concrete counterexample execution.
	Certificate = explore.Certificate
	// ViolationKind classifies a certificate by the violated condition.
	ViolationKind = explore.ViolationKind
	// SimilarityOptions configures the Section 3.5 similarity notions.
	SimilarityOptions = explore.SimilarityOptions
)

// Violation kinds.
const (
	KindNone        = explore.KindNone
	KindAgreement   = explore.KindAgreement
	KindValidity    = explore.KindValidity
	KindTermination = explore.KindTermination
)

// Run types: scheduled executions of a system.
type (
	// RunConfig configures a scheduled run.
	RunConfig = explore.RunConfig
	// RunResult reports a scheduled run.
	RunResult = explore.RunResult
	// FailureEvent schedules a fail_i input before a given round.
	FailureEvent = explore.FailureEvent
)

// Errors.
var (
	// ErrStateExplosion is the sentinel matched by errors.Is when
	// exploration exceeds its vertex budget.
	ErrStateExplosion = explore.ErrStateExplosion
	// ErrNotBivalent reports a hook search from a non-bivalent root.
	ErrNotBivalent = explore.ErrNotBivalent
)

// LimitError is the typed form of ErrStateExplosion: errors.As(err, &le)
// recovers the budget and the partial exploration count.
type LimitError = explore.LimitError

// Property checkers (Section 2.2.4 and Appendix B), re-exported so
// verification code stays on the façade.

// ConsensusRun bundles what the consensus conditions quantify over.
type ConsensusRun = check.ConsensusRun

// CheckConsensus checks agreement, validity and modified termination.
func CheckConsensus(run ConsensusRun) error { return check.Consensus(run) }

// CheckKSetConsensus checks k-agreement, validity and modified termination.
func CheckKSetConsensus(run ConsensusRun, k int) error { return check.KSetConsensus(run, k) }

// CheckTotalOrder checks that all endpoints saw a single delivery order.
func CheckTotalOrder(deliveries map[int][]string) error { return check.TotalOrder(deliveries) }

// TOBDeliveries extracts per-endpoint delivery sequences of a
// totally-ordered-broadcast service from an execution.
func TOBDeliveries(exec Execution, svc string) map[int][]string {
	return check.TOBDeliveries(exec, svc)
}

// CheckFDAccuracy checks that no perfect failure detector ever suspected a
// process that was live at report time.
func CheckFDAccuracy(exec Execution) error { return check.FDAccuracy(exec) }

// AuditFairness checks the I/O-automata fairness condition on an executed
// prefix (window 0 = one full round).
func AuditFairness(sys *System, exec Execution, window int) error {
	return explore.AuditFairness(sys, exec, window)
}

// SomeSimilarity reports a component at which two states are similar in the
// Section 3.5 sense (a process "Pj" under j-similarity, a service index
// under k-similarity), if any.
func SomeSimilarity(sys *System, s0, s1 State, opt SimilarityOptions) (string, bool) {
	return explore.SomeSimilarity(sys, s0, s1, opt)
}

// MonotoneAssignment returns the input assignment of the Lemma 4
// initialization α_i: the first i processes receive "1", the rest "0".
func MonotoneAssignment(sys *System, i int) map[int]string {
	return explore.MonotoneAssignment(sys, i)
}

// FormatTrace renders an external action trace on one line.
func FormatTrace(actions []Action) string { return ioa.FormatTrace(actions) }

// VarSuspects is the process variable in which the bundled
// detector-consuming programs accumulate suspected process IDs.
const VarSuspects = protocols.VarSuspects
